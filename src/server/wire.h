// The server's wire protocol: length-prefixed binary frames over a
// stream socket.
//
//   [u32 LE payload length] [u8 message type] [body ...]
//
// The length counts the type byte plus the body and is capped at
// kMaxFrameBytes (1 MiB) — a peer announcing more is a protocol error
// and the connection is dropped, so a hostile or corrupt length prefix
// can never drive an allocation. All integers are little-endian; there
// is no alignment or padding anywhere in a frame.
//
// Request types (client -> server):
//   kQueryReq  body = query text (see server/query_text.h)
//   kPingReq   body echoed back verbatim in kPong
//   kStatsReq  empty body
//   kSwapReq   body = snapshot path to hot-swap to
//
// Response types (server -> client):
//   kResultHeader  u64 generation, u8 result kind (0 chain, 1 flwor),
//                  u64 total payload bytes, u64 row count
//   kResultChunk   raw payload bytes (split at kChunkBytes)
//   kResultEnd     u64 server-side execution micros
//   kPong          echo of the ping body
//   kStatsRep      u64 generation, queries_ok, queries_rejected,
//                  queries_error, connections_accepted, swaps,
//                  subplan_hits, subplan_misses, subplan_evictions
//   kSwapOk        u64 new generation
//   kError         u8 status code, rest = message (query failed;
//                  connection stays usable)
//   kBusy          empty body: admission queue full, retry later
#ifndef STANDOFF_SERVER_WIRE_H_
#define STANDOFF_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace standoff {
namespace server {

inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr size_t kChunkBytes = 64u << 10;

enum class MsgType : uint8_t {
  kQueryReq = 0x01,
  kPingReq = 0x02,
  kStatsReq = 0x03,
  kSwapReq = 0x04,
  kResultHeader = 0x81,
  kResultChunk = 0x82,
  kResultEnd = 0x83,
  kPong = 0x84,
  kStatsRep = 0x85,
  kSwapOk = 0x86,
  kError = 0xE0,
  kBusy = 0xE1,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

/// Little-endian append/read helpers shared by both frame directions.
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
/// Reads from body at *offset, advancing it; Invalid on short body.
StatusOr<uint32_t> TakeU32(std::string_view body, size_t* offset);
StatusOr<uint64_t> TakeU64(std::string_view body, size_t* offset);

/// Writes one complete frame. Short writes are retried; EPIPE (peer
/// vanished mid-stream) and other socket errors come back as kInternal.
/// SIGPIPE is suppressed (MSG_NOSIGNAL).
Status WriteFrame(int fd, MsgType type, std::string_view body);

/// Reads one complete frame. Error taxonomy, which the server maps to
/// "close quietly" vs "protocol error":
///   kNotFound         peer closed cleanly between frames
///   kInvalidArgument  oversized or zero-length length prefix
///   kInternal         truncated frame (EOF mid-frame) or socket error
StatusOr<Frame> ReadFrame(int fd);

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_WIRE_H_
