// The server's wire protocol: length-prefixed binary frames over a
// stream socket.
//
//   [u32 LE payload length] [u8 message type] [body ...]
//
// The length counts the type byte plus the body and is capped at
// kMaxFrameBytes (1 MiB) — a peer announcing more is a protocol error
// and the connection is dropped, so a hostile or corrupt length prefix
// can never drive an allocation. All integers are little-endian; there
// is no alignment or padding anywhere in a frame.
//
// Request types (client -> server):
//   kQueryReq         body = query text (see server/query_text.h)
//   kPingReq          body echoed back verbatim in kPong
//   kStatsReq         empty body
//   kSwapReq          body = snapshot path to hot-swap to
//   kHelloReq         u32 client protocol version; answered by
//                     kHelloRep. Optional — a client that never says
//                     hello (protocol 1) speaks the read-only subset
//                     unchanged.
//   kInsertRegionReq  u32 doc, u32 id, u64 region start, u64 region
//                     end (both two's-complement int64), rest = config
//                     fingerprint ("start|end|type"; empty = the
//                     default config). Appends a region to the delta
//                     layer; answered by kWriteOk or kError.
//   kDeleteRegionReq  u32 doc, u32 id, rest = config fingerprint as
//                     above. Deletes every region of the id (pending
//                     inserts die, base rows are tombstoned); answered
//                     by kWriteOk or kError.
//   kCompactReq       body = target snapshot path (empty = a
//                     server-chosen sibling of the boot snapshot).
//                     Rewrites (base ⊎ delta) into a new snapshot
//                     generation, hot-swaps to it, and rebases the
//                     pending deltas; answered by kCompactOk or
//                     kError.
//
// Response types (server -> client):
//   kResultHeader  u64 generation, u8 result kind (0 chain, 1 flwor),
//                  u64 total payload bytes, u64 row count
//   kResultChunk   raw payload bytes (split at kChunkBytes)
//   kResultEnd     u64 server-side execution micros
//   kPong          echo of the ping body
//   kStatsRep      u64 generation, queries_ok, queries_rejected,
//                  queries_error, connections_accepted, swaps,
//                  subplan_hits, subplan_misses, subplan_evictions,
//                  delta_inserts, delta_deletes, delta_live_rows,
//                  delta_live_tombstones, compactions. Fields are
//                  parsed by offset, so versions only ever APPEND
//                  fields: an old client reads its prefix and ignores
//                  the rest, a new client treats missing tail fields
//                  as zero (old server).
//   kSwapOk        u64 new generation
//   kHelloRep      u32 server protocol version (kProtocolVersion)
//   kWriteOk       u64 sequence number the write was applied at
//   kCompactOk     u64 new generation, u64 compacted sequence (every
//                  write at or below it is now in the base snapshot)
//   kError         u8 status code, rest = message (query failed;
//                  connection stays usable)
//   kBusy          empty body: admission queue full, retry later
//
// Versioning. kProtocolVersion is 2 (version 1 = the read-only
// protocol above without hello/write/compact frames). Compatibility is
// by construction rather than negotiation: an old client simply never
// sends the new request types, and an old server answers them with
// kError("unknown request type") — which is exactly what Client::Hello
// surfaces, so a new client can probe capability with one round trip.
#ifndef STANDOFF_SERVER_WIRE_H_
#define STANDOFF_SERVER_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace standoff {
namespace server {

inline constexpr uint32_t kMaxFrameBytes = 1u << 20;
inline constexpr size_t kChunkBytes = 64u << 10;

/// See the versioning note in the file comment.
inline constexpr uint32_t kProtocolVersion = 2;

enum class MsgType : uint8_t {
  kQueryReq = 0x01,
  kPingReq = 0x02,
  kStatsReq = 0x03,
  kSwapReq = 0x04,
  kHelloReq = 0x05,
  kInsertRegionReq = 0x06,
  kDeleteRegionReq = 0x07,
  kCompactReq = 0x08,
  kResultHeader = 0x81,
  kResultChunk = 0x82,
  kResultEnd = 0x83,
  kPong = 0x84,
  kStatsRep = 0x85,
  kSwapOk = 0x86,
  kHelloRep = 0x87,
  kWriteOk = 0x88,
  kCompactOk = 0x89,
  kError = 0xE0,
  kBusy = 0xE1,
};

struct Frame {
  MsgType type = MsgType::kError;
  std::string body;
};

/// Little-endian append/read helpers shared by both frame directions.
void AppendU32(std::string* out, uint32_t value);
void AppendU64(std::string* out, uint64_t value);
/// Reads from body at *offset, advancing it; Invalid on short body.
StatusOr<uint32_t> TakeU32(std::string_view body, size_t* offset);
StatusOr<uint64_t> TakeU64(std::string_view body, size_t* offset);

/// Writes one complete frame. Short writes are retried; EPIPE (peer
/// vanished mid-stream) and other socket errors come back as kInternal.
/// SIGPIPE is suppressed (MSG_NOSIGNAL).
Status WriteFrame(int fd, MsgType type, std::string_view body);

/// Reads one complete frame. Error taxonomy, which the server maps to
/// "close quietly" vs "protocol error":
///   kNotFound         peer closed cleanly between frames
///   kInvalidArgument  oversized or zero-length length prefix
///   kInternal         truncated frame (EOF mid-frame) or socket error
StatusOr<Frame> ReadFrame(int fd);

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_WIRE_H_
