// The text form of a kQueryReq body: a one-line query in one of two
// dialects, dispatched on the first word.
//
//   chain doc=<N> ctx=<name|*> steps=<axis>:<name>[,<axis>:<name>...]
//       A multi-predicate chain query (Engine::EvaluateChain). Axes:
//       select-narrow / select-wide / reject-narrow / reject-wide, or
//       the short forms sn / sw / rn / rw. A name of "*" matches any
//       annotated element (ctx=* likewise). Optional trailing
//       type=<standoff_type> forwards ChainQuery::standoff_type.
//
//   flwor [deadline_ms=<ms>] <xquery text>
//       Everything after the first space (and the optional leading
//       deadline_ms= field) is handed to Engine::Evaluate verbatim —
//       the FLWOR subset with standoff axes, e.g.
//       "count(/site/select-narrow::description)". Absolute paths bind
//       to document 0, per the engine's convention.
//
// Both dialects accept deadline_ms=<ms> (chain: anywhere; flwor: only
// as the first field): a per-query wall-clock deadline in fractional
// milliseconds, checked at merge-pass block boundaries. A query past
// its deadline is answered with a kError frame carrying the kTimedOut
// status code.
//
// Parsing is strict: unknown keys, missing fields, malformed numbers,
// and empty step lists are kInvalidArgument with a message naming the
// offending token — the server relays that message in a kError frame,
// so a typo in a client query is diagnosable from the client side.
#ifndef STANDOFF_SERVER_QUERY_TEXT_H_
#define STANDOFF_SERVER_QUERY_TEXT_H_

#include <string>
#include <string_view>

#include "common/status.h"
#include "xquery/engine.h"

namespace standoff {
namespace server {

struct ParsedQuery {
  enum class Kind { kChain, kFlwor };
  Kind kind = Kind::kChain;
  xquery::ChainQuery chain;  // valid when kind == kChain
  std::string flwor;         // valid when kind == kFlwor
  /// Per-query deadline in seconds, from the optional deadline_ms=
  /// field (fractional milliseconds allowed). 0 = no per-query
  /// deadline; the server's configured timeout still applies.
  double deadline_seconds = 0;
};

StatusOr<ParsedQuery> ParseQueryText(std::string_view text);

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_QUERY_TEXT_H_
