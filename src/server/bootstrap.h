// Shared corpus builder for the server binary, the load generator, and
// the server tests: a deterministic XMark-derived snapshot whose
// documents alternate StandOff transforms (for chain and standoff
// FLWOR queries) with nested originals (for navigation queries).
// Document 0 is always a StandOff transform, because absolute FLWOR
// paths bind to document 0.
#ifndef STANDOFF_SERVER_BOOTSTRAP_H_
#define STANDOFF_SERVER_BOOTSTRAP_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace standoff {
namespace server {

struct BootstrapOptions {
  double scale = 0.02;      // XMark scale per generated document
  uint32_t documents = 4;   // total documents (>= 1)
  uint32_t shard_count = 2;
  uint64_t seed = 20060619; // deterministic corpus, like xmark defaults
};

/// Builds the corpus and saves it as a snapshot at `path` (durable
/// atomic publish, like every SaveSnapshot).
Status BuildXmarkSnapshot(const std::string& path,
                          const BootstrapOptions& options = {});

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_BOOTSTRAP_H_
