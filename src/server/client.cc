#include "server/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "common/rng.h"
#include "common/timer.h"

namespace standoff {
namespace server {

namespace {

/// Decodes a kError body (u8 code + message) into its Status.
Status DecodeError(const std::string& body) {
  if (body.empty()) return Status::Internal("empty error frame");
  const auto code = static_cast<StatusCode>(static_cast<uint8_t>(body[0]));
  return Status(code, body.substr(1));
}

/// Pulls `deadline_ms=<n>` out of the query text (same syntax the
/// server's ParseQueryText accepts) so the retry loop can treat it as
/// the total budget. 0 = no deadline.
double DeadlineSecondsOf(const std::string& text) {
  const size_t pos = text.find("deadline_ms=");
  if (pos == std::string::npos) return 0;
  const char* digits = text.c_str() + pos + 12;
  char* end = nullptr;
  const double ms = std::strtod(digits, &end);
  return end != digits && ms > 0 ? ms / 1000.0 : 0;
}

}  // namespace

StatusOr<std::unique_ptr<Client>> Client::Connect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const Status st =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return std::unique_ptr<Client>(new Client(fd));
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Status Client::Ping() {
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kPingReq, "ping"));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kPong || reply->body != "ping") {
    return Status::Internal("bad pong");
  }
  return Status::OK();
}

StatusOr<QueryReply> Client::Query(const std::string& text) {
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kQueryReq, text));

  auto first = ReadFrame(fd_);
  if (!first.ok()) return first.status();
  QueryReply out;
  if (first->type == MsgType::kBusy) {
    out.busy = true;
    return out;
  }
  if (first->type == MsgType::kError) return DecodeError(first->body);
  if (first->type != MsgType::kResultHeader) {
    return Status::Internal("expected result header, got type " +
                            std::to_string(static_cast<int>(first->type)));
  }
  size_t off = 0;
  auto generation = TakeU64(first->body, &off);
  if (!generation.ok()) return generation.status();
  if (first->body.size() < off + 1) {
    return Status::Internal("result header too short");
  }
  out.generation = *generation;
  out.kind = static_cast<uint8_t>(first->body[off++]);
  auto payload_bytes = TakeU64(first->body, &off);
  if (!payload_bytes.ok()) return payload_bytes.status();
  auto rows = TakeU64(first->body, &off);
  if (!rows.ok()) return rows.status();
  out.rows = *rows;

  out.payload.reserve(*payload_bytes);
  for (;;) {
    auto frame = ReadFrame(fd_);
    if (!frame.ok()) return frame.status();
    if (frame->type == MsgType::kResultChunk) {
      out.payload.append(frame->body);
      if (out.payload.size() > *payload_bytes) {
        return Status::Internal("result chunks exceed announced size");
      }
      continue;
    }
    if (frame->type == MsgType::kResultEnd) {
      size_t end_off = 0;
      auto micros = TakeU64(frame->body, &end_off);
      if (!micros.ok()) return micros.status();
      out.server_micros = *micros;
      break;
    }
    return Status::Internal("unexpected frame inside result stream");
  }
  if (out.payload.size() != *payload_bytes) {
    return Status::Internal("result stream ended short");
  }
  return out;
}

StatusOr<QueryReply> Client::QueryWithRetry(const std::string& text,
                                            const QueryRetryOptions& options) {
  const double deadline_seconds = DeadlineSecondsOf(text);
  Timer timer;
  Rng rng(options.jitter_seed != 0
              ? options.jitter_seed
              : 0x9E3779B97F4A7C15ULL ^ static_cast<uint64_t>(fd_));
  double backoff_ms = options.initial_backoff_ms;
  const int attempts = std::max(1, options.max_attempts);
  for (int attempt = 1;; ++attempt) {
    auto reply = Query(text);
    if (!reply.ok()) return reply;  // hard error: no retry
    reply->attempts = attempt;
    if (!reply->busy || attempt >= attempts) return reply;
    // Full jitter in [backoff/2, backoff): decorrelates a thundering
    // herd of clients that all got rejected by the same burst.
    double sleep_ms = backoff_ms * (0.5 + 0.5 * rng.NextDouble());
    if (deadline_seconds > 0) {
      const double remaining_ms =
          (deadline_seconds - timer.ElapsedSeconds()) * 1000.0;
      if (remaining_ms <= sleep_ms) return reply;  // budget spent: stay busy
    }
    ::usleep(static_cast<useconds_t>(sleep_ms * 1000.0));
    backoff_ms = std::min(backoff_ms * 2.0, options.max_backoff_ms);
  }
}

StatusOr<uint64_t> Client::Swap(const std::string& path) {
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kSwapReq, path));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) return DecodeError(reply->body);
  if (reply->type != MsgType::kSwapOk) {
    return Status::Internal("expected kSwapOk");
  }
  size_t off = 0;
  return TakeU64(reply->body, &off);
}

StatusOr<uint32_t> Client::Hello() {
  std::string body;
  AppendU32(&body, kProtocolVersion);
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kHelloReq, body));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) return DecodeError(reply->body);
  if (reply->type != MsgType::kHelloRep) {
    return Status::Internal("expected kHelloRep");
  }
  size_t off = 0;
  return TakeU32(reply->body, &off);
}

namespace {

/// Shared tail of both write RPCs: read one frame, expect kWriteOk.
StatusOr<uint64_t> ReadWriteOk(int fd) {
  auto reply = ReadFrame(fd);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) return DecodeError(reply->body);
  if (reply->type != MsgType::kWriteOk) {
    return Status::Internal("expected kWriteOk");
  }
  size_t off = 0;
  return TakeU64(reply->body, &off);
}

}  // namespace

StatusOr<uint64_t> Client::InsertRegion(uint32_t doc, uint32_t id,
                                        int64_t start, int64_t end,
                                        const std::string& fingerprint) {
  std::string body;
  AppendU32(&body, doc);
  AppendU32(&body, id);
  AppendU64(&body, static_cast<uint64_t>(start));
  AppendU64(&body, static_cast<uint64_t>(end));
  body.append(fingerprint);
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kInsertRegionReq, body));
  return ReadWriteOk(fd_);
}

StatusOr<uint64_t> Client::DeleteRegions(uint32_t doc, uint32_t id,
                                         const std::string& fingerprint) {
  std::string body;
  AppendU32(&body, doc);
  AppendU32(&body, id);
  body.append(fingerprint);
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kDeleteRegionReq, body));
  return ReadWriteOk(fd_);
}

StatusOr<Client::CompactReply> Client::Compact(const std::string& path) {
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kCompactReq, path));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply->type == MsgType::kError) return DecodeError(reply->body);
  if (reply->type != MsgType::kCompactOk) {
    return Status::Internal("expected kCompactOk");
  }
  size_t off = 0;
  CompactReply out;
  auto generation = TakeU64(reply->body, &off);
  if (!generation.ok()) return generation.status();
  auto seq = TakeU64(reply->body, &off);
  if (!seq.ok()) return seq.status();
  out.generation = *generation;
  out.compacted_seq = *seq;
  return out;
}

StatusOr<ServerStats> Client::Stats() {
  STANDOFF_RETURN_IF_ERROR(WriteFrame(fd_, MsgType::kStatsReq, ""));
  auto reply = ReadFrame(fd_);
  if (!reply.ok()) return reply.status();
  if (reply->type != MsgType::kStatsRep) {
    return Status::Internal("expected kStatsRep");
  }
  size_t off = 0;
  ServerStats stats;
  uint64_t* fields[] = {&stats.generation,           &stats.queries_ok,
                        &stats.queries_rejected,     &stats.queries_error,
                        &stats.connections_accepted, &stats.swaps,
                        &stats.subplan_hits,         &stats.subplan_misses,
                        &stats.subplan_evictions};
  for (uint64_t* field : fields) {
    auto value = TakeU64(reply->body, &off);
    if (!value.ok()) return value.status();
    *field = *value;
  }
  // Appended by protocol 2; absent (and zero) on an older server.
  uint64_t* tail[] = {&stats.delta_inserts,      &stats.delta_deletes,
                      &stats.delta_live_rows,    &stats.delta_live_tombstones,
                      &stats.compactions,        &stats.wal_appends,
                      &stats.wal_fsyncs,         &stats.wal_replayed_ops,
                      &stats.wal_truncated_bytes, &stats.auto_compactions};
  for (uint64_t* field : tail) {
    if (off + 8 > reply->body.size()) break;
    auto value = TakeU64(reply->body, &off);
    if (!value.ok()) return value.status();
    *field = *value;
  }
  return stats;
}

}  // namespace server
}  // namespace standoff
