// standoff_server: serve StandOff chain and FLWOR queries from a
// snapshot over the wire protocol of server/wire.h.
//
//   standoff_server --snapshot=/path/to/file.sosnap [--port=0]
//                   [--workers=2] [--queue=8] [--max-connections=64]
//                   [--wal-dir=DIR] [--wal-sync=always|interval|none]
//                   [--wal-sync-ms=5] [--compact-threshold=N]
//   standoff_server --bootstrap-xmark=/path/to/file.sosnap
//                   [--scale=0.02] [--docs=4] [--shards=2]
//                   [--bootstrap-only]
//
// --wal-dir enables crash-safe write-ahead durability (DESIGN.md §16):
// boot replays the log (recovering acknowledged writes, truncating a
// torn tail) and every accepted write is logged before its ack.
// --compact-threshold=N triggers a background compaction whenever N
// delta rows+tombstones are pending.
//
// With --bootstrap-xmark the snapshot is (re)built first, then served;
// --bootstrap-only exits right after the build (CI uses this to stage
// the hot-swap target snapshot without a second serving process).
// Prints "LISTENING port=<N> generation=<G>" on stdout once ready, so
// scripts can scrape the ephemeral port, and serves until SIGINT or
// SIGTERM.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>

#include "server/bootstrap.h"
#include "server/server.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

bool TakeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using standoff::server::BootstrapOptions;
  using standoff::server::BuildXmarkSnapshot;
  using standoff::server::Server;
  using standoff::server::ServerConfig;

  std::string snapshot_path;
  std::string bootstrap_path;
  bool bootstrap_only = false;
  BootstrapOptions bootstrap;
  ServerConfig config;

  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (TakeFlag(argv[i], "--snapshot", &value)) {
      snapshot_path = value;
    } else if (TakeFlag(argv[i], "--bootstrap-xmark", &value)) {
      bootstrap_path = value;
    } else if (TakeFlag(argv[i], "--scale", &value)) {
      bootstrap.scale = std::atof(value.c_str());
    } else if (TakeFlag(argv[i], "--docs", &value)) {
      bootstrap.documents = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--shards", &value)) {
      bootstrap.shard_count = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--port", &value)) {
      config.port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--workers", &value)) {
      config.pool_workers = static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--queue", &value)) {
      config.admission_capacity =
          static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--max-connections", &value)) {
      config.max_connections =
          static_cast<uint32_t>(std::atoi(value.c_str()));
    } else if (TakeFlag(argv[i], "--wal-dir", &value)) {
      config.wal_dir = value;
    } else if (TakeFlag(argv[i], "--wal-sync", &value)) {
      if (value == "always") {
        config.wal_sync = standoff::storage::WalSyncPolicy::kAlways;
      } else if (value == "interval") {
        config.wal_sync = standoff::storage::WalSyncPolicy::kEveryNMs;
      } else if (value == "none") {
        config.wal_sync = standoff::storage::WalSyncPolicy::kNone;
      } else {
        std::fprintf(stderr, "--wal-sync wants always|interval|none\n");
        return 2;
      }
    } else if (TakeFlag(argv[i], "--wal-sync-ms", &value)) {
      config.wal_sync_interval_ms = std::atof(value.c_str());
    } else if (TakeFlag(argv[i], "--compact-threshold", &value)) {
      config.compact_live_rows_threshold =
          static_cast<uint64_t>(std::atoll(value.c_str()));
    } else if (std::strcmp(argv[i], "--bootstrap-only") == 0) {
      bootstrap_only = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", argv[i]);
      return 2;
    }
  }

  if (!bootstrap_path.empty()) {
    const auto status = BuildXmarkSnapshot(bootstrap_path, bootstrap);
    if (!status.ok()) {
      std::fprintf(stderr, "bootstrap failed: %s\n",
                   status.ToString().c_str());
      return 1;
    }
    if (bootstrap_only) {
      std::printf("BOOTSTRAPPED %s\n", bootstrap_path.c_str());
      return 0;
    }
    if (snapshot_path.empty()) snapshot_path = bootstrap_path;
  }
  if (bootstrap_only) {
    std::fprintf(stderr, "--bootstrap-only needs --bootstrap-xmark=PATH\n");
    return 2;
  }
  if (snapshot_path.empty()) {
    std::fprintf(stderr,
                 "usage: standoff_server --snapshot=PATH | "
                 "--bootstrap-xmark=PATH [--port=N] [--workers=N] "
                 "[--queue=N]\n");
    return 2;
  }

  auto server = Server::Start(snapshot_path, config);
  if (!server.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("LISTENING port=%u generation=%llu\n",
              unsigned{(*server)->port()},
              static_cast<unsigned long long>((*server)->generation()));
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    struct timespec ts {0, 50 * 1000 * 1000};
    nanosleep(&ts, nullptr);
  }
  (*server)->Stop();
  const auto stats = (*server)->stats();
  std::fprintf(stderr,
               "served: ok=%llu rejected=%llu error=%llu connections=%llu "
               "swaps=%llu\n",
               static_cast<unsigned long long>(stats.queries_ok),
               static_cast<unsigned long long>(stats.queries_rejected),
               static_cast<unsigned long long>(stats.queries_error),
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.swaps));
  return 0;
}
