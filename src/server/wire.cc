#include "server/wire.h"

#include <sys/socket.h>
#include <sys/types.h>

#include <cerrno>
#include <cstring>

namespace standoff {
namespace server {

namespace {

#if defined(MSG_NOSIGNAL)
constexpr int kSendFlags = MSG_NOSIGNAL;
#else
constexpr int kSendFlags = 0;
#endif

/// recv() exactly `len` bytes. Returns the byte count actually read:
/// `len` on success, 0 on immediate clean EOF, a short count on EOF
/// mid-read, or -1 on a socket error.
ssize_t RecvAll(int fd, void* buf, size_t len) {
  size_t done = 0;
  while (done < len) {
    const ssize_t n =
        ::recv(fd, static_cast<char*>(buf) + done, len - done, 0);
    if (n == 0) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      return -1;
    }
    done += static_cast<size_t>(n);
  }
  return static_cast<ssize_t>(done);
}

}  // namespace

void AppendU32(std::string* out, uint32_t value) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

void AppendU64(std::string* out, uint64_t value) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<char>((value >> shift) & 0xFF));
  }
}

StatusOr<uint32_t> TakeU32(std::string_view body, size_t* offset) {
  if (body.size() < *offset || body.size() - *offset < 4) {
    return Status::Invalid("frame body too short for u32");
  }
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(
                 static_cast<uint8_t>(body[*offset + static_cast<size_t>(i)]))
             << (8 * i);
  }
  *offset += 4;
  return value;
}

StatusOr<uint64_t> TakeU64(std::string_view body, size_t* offset) {
  if (body.size() < *offset || body.size() - *offset < 8) {
    return Status::Invalid("frame body too short for u64");
  }
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(
                 static_cast<uint8_t>(body[*offset + static_cast<size_t>(i)]))
             << (8 * i);
  }
  *offset += 8;
  return value;
}

Status WriteFrame(int fd, MsgType type, std::string_view body) {
  if (body.size() + 1 > kMaxFrameBytes) {
    return Status::Invalid("frame body exceeds kMaxFrameBytes");
  }
  std::string frame;
  frame.reserve(4 + 1 + body.size());
  AppendU32(&frame, static_cast<uint32_t>(body.size() + 1));
  frame.push_back(static_cast<char>(type));
  frame.append(body);

  size_t done = 0;
  while (done < frame.size()) {
    const ssize_t n =
        ::send(fd, frame.data() + done, frame.size() - done, kSendFlags);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(std::string("send: ") + std::strerror(errno));
    }
    done += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<Frame> ReadFrame(int fd) {
  uint8_t prefix[4];
  const ssize_t got = RecvAll(fd, prefix, sizeof prefix);
  if (got == 0) return Status::NotFound("connection closed");
  if (got < 0) {
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  if (got < static_cast<ssize_t>(sizeof prefix)) {
    return Status::Internal("truncated frame: EOF inside length prefix");
  }
  const uint32_t length = static_cast<uint32_t>(prefix[0]) |
                          static_cast<uint32_t>(prefix[1]) << 8 |
                          static_cast<uint32_t>(prefix[2]) << 16 |
                          static_cast<uint32_t>(prefix[3]) << 24;
  if (length == 0) return Status::Invalid("zero-length frame");
  if (length > kMaxFrameBytes) {
    return Status::Invalid("frame length " + std::to_string(length) +
                           " exceeds cap " + std::to_string(kMaxFrameBytes));
  }

  std::string payload(length, '\0');
  const ssize_t body_got = RecvAll(fd, payload.data(), payload.size());
  if (body_got < 0) {
    return Status::Internal(std::string("recv: ") + std::strerror(errno));
  }
  if (body_got < static_cast<ssize_t>(payload.size())) {
    return Status::Internal("truncated frame: EOF inside payload");
  }

  Frame frame;
  frame.type = static_cast<MsgType>(static_cast<uint8_t>(payload[0]));
  frame.body = payload.substr(1);
  return frame;
}

}  // namespace server
}  // namespace standoff
