// Blocking client for the server's wire protocol: one TCP connection,
// one request at a time (matching the server's serial-per-connection
// framing). Used by the load generator, the server tests, and the CLI.
#ifndef STANDOFF_SERVER_CLIENT_H_
#define STANDOFF_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/server.h"
#include "server/wire.h"

namespace standoff {
namespace server {

/// A complete query exchange. `busy` is the backpressure outcome: the
/// server refused admission (kBusy) — not an error, retry later.
struct QueryReply {
  bool busy = false;
  uint64_t generation = 0;
  uint8_t kind = 0;  // 0 chain, 1 flwor
  uint64_t rows = 0;
  std::string payload;       // the reassembled chunk bytes
  uint64_t server_micros = 0;
};

class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static StatusOr<std::unique_ptr<Client>> Connect(uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips a ping; the body must echo back.
  Status Ping();

  /// Runs one query. Query failures the server reports (parse errors,
  /// bad doc ids, engine errors) come back as the error Status with the
  /// server's code and message; kBusy comes back OK with busy=true.
  StatusOr<QueryReply> Query(const std::string& text);

  /// Asks the server to hot-swap to `path`; returns the new generation.
  StatusOr<uint64_t> Swap(const std::string& path);

  StatusOr<ServerStats> Stats();

  /// The raw socket, for tests that need to write malformed bytes.
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_CLIENT_H_
