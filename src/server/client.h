// Blocking client for the server's wire protocol: one TCP connection,
// one request at a time (matching the server's serial-per-connection
// framing). Used by the load generator, the server tests, and the CLI.
#ifndef STANDOFF_SERVER_CLIENT_H_
#define STANDOFF_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/server.h"
#include "server/wire.h"

namespace standoff {
namespace server {

/// A complete query exchange. `busy` is the backpressure outcome: the
/// server refused admission (kBusy) — not an error, retry later.
struct QueryReply {
  bool busy = false;
  uint64_t generation = 0;
  uint8_t kind = 0;  // 0 chain, 1 flwor
  uint64_t rows = 0;
  std::string payload;       // the reassembled chunk bytes
  uint64_t server_micros = 0;
  /// Query attempts consumed (always 1 for plain Query; >= 1 for
  /// QueryWithRetry, counting the busy rounds).
  int attempts = 1;
};

/// Backoff policy for Client::QueryWithRetry.
struct QueryRetryOptions {
  /// Total Query attempts (first try included). 1 = no retry.
  int max_attempts = 5;
  double initial_backoff_ms = 1.0;
  double max_backoff_ms = 50.0;
  /// Jitter seed; 0 derives one from the socket fd.
  uint64_t jitter_seed = 0;
};

class Client {
 public:
  /// Connects to 127.0.0.1:port.
  static StatusOr<std::unique_ptr<Client>> Connect(uint16_t port);

  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Round-trips a ping; the body must echo back.
  Status Ping();

  /// Runs one query. Query failures the server reports (parse errors,
  /// bad doc ids, engine errors) come back as the error Status with the
  /// server's code and message; kBusy comes back OK with busy=true.
  StatusOr<QueryReply> Query(const std::string& text);

  /// Query, but busy-backpressure rejections retry with capped
  /// exponential backoff + jitter instead of surfacing immediately —
  /// transient admission rejects stop looking like failures. Hard
  /// errors return at once. If the query text carries `deadline_ms=`,
  /// the retry loop honors it as a total budget: no sleep ever extends
  /// past the deadline. When every attempt came back busy, the reply
  /// has busy=true (still not an error) with `attempts` filled in.
  StatusOr<QueryReply> QueryWithRetry(
      const std::string& text,
      const QueryRetryOptions& options = QueryRetryOptions());

  /// Asks the server to hot-swap to `path`; returns the new generation.
  StatusOr<uint64_t> Swap(const std::string& path);

  /// Protocol-version exchange: returns the server's version. A
  /// pre-write server answers kError("unknown request type") — that
  /// status IS the capability probe for the write frames below.
  StatusOr<uint32_t> Hello();

  /// Appends a region for element `id` of `doc` to the server's delta
  /// layer; empty fingerprint = the default standoff config. Returns
  /// the sequence number the write was applied at.
  StatusOr<uint64_t> InsertRegion(uint32_t doc, uint32_t id, int64_t start,
                                  int64_t end,
                                  const std::string& fingerprint = "");

  /// Deletes every region of `id` under the config; same conventions.
  StatusOr<uint64_t> DeleteRegions(uint32_t doc, uint32_t id,
                                   const std::string& fingerprint = "");

  struct CompactReply {
    uint64_t generation = 0;     // the compacted snapshot's generation
    uint64_t compacted_seq = 0;  // writes <= this are now in the base
  };
  /// Compacts (base ⊎ delta) into a new snapshot generation; empty
  /// path lets the server choose a sibling of its boot snapshot.
  StatusOr<CompactReply> Compact(const std::string& path = "");

  /// Reads the server's counters. Tail fields (delta/compaction, WAL,
  /// auto-compaction) are zero when the server predates them — its
  /// kStatsRep body simply ends earlier.
  StatusOr<ServerStats> Stats();

  /// The raw socket, for tests that need to write malformed bytes.
  int fd() const { return fd_; }

 private:
  explicit Client(int fd) : fd_(fd) {}
  int fd_;
};

}  // namespace server
}  // namespace standoff

#endif  // STANDOFF_SERVER_CLIENT_H_
