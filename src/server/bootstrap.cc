#include "server/bootstrap.h"

#include "storage/sharded_store.h"
#include "storage/snapshot.h"
#include "xmark/generator.h"
#include "xmark/standoff_transform.h"

namespace standoff {
namespace server {

Status BuildXmarkSnapshot(const std::string& path,
                          const BootstrapOptions& options) {
  if (options.documents == 0) {
    return Status::Invalid("bootstrap needs at least one document");
  }
  storage::ShardedStore store(options.shard_count);
  for (uint32_t d = 0; d < options.documents; ++d) {
    xmark::XmarkOptions xmark_options;
    xmark_options.scale = options.scale;
    xmark_options.seed = options.seed + d;
    const std::string nested = xmark::GenerateXmark(xmark_options);
    if (d % 2 == 0) {
      auto standoff_doc = xmark::ToStandoff(nested);
      if (!standoff_doc.ok()) return standoff_doc.status();
      auto id = store.AddDocumentText("xmark_so_" + std::to_string(d),
                                      standoff_doc->xml);
      if (!id.ok()) return id.status();
      STANDOFF_RETURN_IF_ERROR(store.SetBlob(*id, standoff_doc->blob));
    } else {
      auto id = store.AddDocumentText("xmark_nested_" + std::to_string(d),
                                      nested);
      if (!id.ok()) return id.status();
    }
  }
  return storage::SaveSnapshot(store, path);
}

}  // namespace server
}  // namespace standoff
