// standoff_client: a wire-protocol CLI for scripts and CI.
//
//   standoff_client --port=N [op ...]
//
// Operations execute left to right on one connection and print one
// line each; the process exits non-zero on the first failure.
//
//   --ping                       PONG
//   --hello                      PROTOCOL <version>
//   --query=TEXT                 ROWS <n>        (busy retries built in)
//   --insert=doc,id,start,end    SEQ <n>
//   --delete=doc,id              SEQ <n>
//   --compact[=path]             COMPACTED gen=<g> seq=<s>
//   --swap=path                  SWAPPED gen=<g>
//   --stats                      STATS key=value ...
//
// The CI kill-and-recover loop drives writes with --insert, SIGKILLs
// the server, restarts it on the same --wal-dir, and verifies the
// acknowledged rows with --query.
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "server/client.h"

namespace {

bool TakeFlag(const char* arg, const char* name, std::string* value) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0 || arg[len] != '=') return false;
  *value = arg + len + 1;
  return true;
}

/// Splits "a,b,c" into int64 fields; false on count/format mismatch.
bool ParseInts(const std::string& text, size_t count,
               std::vector<int64_t>* out) {
  out->clear();
  size_t pos = 0;
  while (pos <= text.size()) {
    size_t comma = text.find(',', pos);
    if (comma == std::string::npos) comma = text.size();
    const std::string field = text.substr(pos, comma - pos);
    if (field.empty()) return false;
    char* end = nullptr;
    out->push_back(std::strtoll(field.c_str(), &end, 10));
    if (end == field.c_str() || *end != '\0') return false;
    pos = comma + 1;
    if (comma == text.size()) break;
  }
  return out->size() == count;
}

int Fail(const standoff::Status& status, const char* what) {
  std::fprintf(stderr, "%s failed: %s\n", what, status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  using standoff::server::Client;

  uint16_t port = 0;
  std::vector<std::string> ops;
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (TakeFlag(argv[i], "--port", &value)) {
      port = static_cast<uint16_t>(std::atoi(value.c_str()));
    } else {
      ops.push_back(argv[i]);
    }
  }
  if (port == 0 || ops.empty()) {
    std::fprintf(stderr,
                 "usage: standoff_client --port=N [--ping] [--hello] "
                 "[--query=TEXT] [--insert=doc,id,start,end] "
                 "[--delete=doc,id] [--compact[=path]] [--swap=path] "
                 "[--stats]\n");
    return 2;
  }

  auto client = Client::Connect(port);
  if (!client.ok()) return Fail(client.status(), "connect");

  for (const std::string& op : ops) {
    std::string value;
    if (TakeFlag(op.c_str(), "--query", &value)) {
      auto reply = (*client)->QueryWithRetry(value);
      if (!reply.ok()) return Fail(reply.status(), "query");
      if (reply->busy) {
        std::fprintf(stderr, "query still busy after %d attempts\n",
                     reply->attempts);
        return 1;
      }
      std::printf("ROWS %" PRIu64 "\n", reply->rows);
    } else if (TakeFlag(op.c_str(), "--insert", &value)) {
      std::vector<int64_t> f;
      if (!ParseInts(value, 4, &f)) {
        std::fprintf(stderr, "--insert wants doc,id,start,end\n");
        return 2;
      }
      auto seq = (*client)->InsertRegion(static_cast<uint32_t>(f[0]),
                                         static_cast<uint32_t>(f[1]), f[2],
                                         f[3]);
      if (!seq.ok()) return Fail(seq.status(), "insert");
      std::printf("SEQ %" PRIu64 "\n", *seq);
    } else if (TakeFlag(op.c_str(), "--delete", &value)) {
      std::vector<int64_t> f;
      if (!ParseInts(value, 2, &f)) {
        std::fprintf(stderr, "--delete wants doc,id\n");
        return 2;
      }
      auto seq = (*client)->DeleteRegions(static_cast<uint32_t>(f[0]),
                                          static_cast<uint32_t>(f[1]));
      if (!seq.ok()) return Fail(seq.status(), "delete");
      std::printf("SEQ %" PRIu64 "\n", *seq);
    } else if (op == "--compact" ||
               TakeFlag(op.c_str(), "--compact", &value)) {
      auto reply = (*client)->Compact(value);
      if (!reply.ok()) return Fail(reply.status(), "compact");
      std::printf("COMPACTED gen=%" PRIu64 " seq=%" PRIu64 "\n",
                  reply->generation, reply->compacted_seq);
    } else if (TakeFlag(op.c_str(), "--swap", &value)) {
      auto generation = (*client)->Swap(value);
      if (!generation.ok()) return Fail(generation.status(), "swap");
      std::printf("SWAPPED gen=%" PRIu64 "\n", *generation);
    } else if (op == "--ping") {
      const auto status = (*client)->Ping();
      if (!status.ok()) return Fail(status, "ping");
      std::printf("PONG\n");
    } else if (op == "--hello") {
      auto version = (*client)->Hello();
      if (!version.ok()) return Fail(version.status(), "hello");
      std::printf("PROTOCOL %u\n", *version);
    } else if (op == "--stats") {
      auto stats = (*client)->Stats();
      if (!stats.ok()) return Fail(stats.status(), "stats");
      std::printf(
          "STATS generation=%" PRIu64 " queries_ok=%" PRIu64
          " queries_rejected=%" PRIu64 " queries_error=%" PRIu64
          " delta_inserts=%" PRIu64 " delta_deletes=%" PRIu64
          " delta_live_rows=%" PRIu64 " compactions=%" PRIu64
          " wal_appends=%" PRIu64 " wal_fsyncs=%" PRIu64
          " wal_replayed_ops=%" PRIu64 " wal_truncated_bytes=%" PRIu64
          " auto_compactions=%" PRIu64 "\n",
          stats->generation, stats->queries_ok, stats->queries_rejected,
          stats->queries_error, stats->delta_inserts, stats->delta_deletes,
          stats->delta_live_rows, stats->compactions, stats->wal_appends,
          stats->wal_fsyncs, stats->wal_replayed_ops,
          stats->wal_truncated_bytes, stats->auto_compactions);
    } else {
      std::fprintf(stderr, "unknown op: %s\n", op.c_str());
      return 2;
    }
  }
  return 0;
}
